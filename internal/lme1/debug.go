package lme1

import (
	"fmt"
	"sort"
	"strings"

	"lme/internal/doorway"
)

// DebugString renders the node's full protocol state on one line; used by
// failing-test diagnostics and the tracing CLI.
func (n *Node) DebugString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state=%v ph=%d color=%d recolor=%v via=%v", n.state, n.ph, n.myColor, n.needsRecolor, n.viaRecolor)
	for d := dwIndex(0); d < numDoorways; d++ {
		pos := "out"
		if n.dws[d].Behind() {
			pos = "BEHIND"
		} else if n.dws[d].Entering() {
			pos = "entering"
		}
		fmt.Fprintf(&b, " %v=%s", d, pos)
	}
	keys := n.sortedNeighbors()
	fmt.Fprintf(&b, " at={")
	for _, j := range keys {
		c, ok := n.colors[j]
		cs := "⊥"
		if ok {
			cs = fmt.Sprint(c)
		}
		fmt.Fprintf(&b, "%d(c=%s,fork=%v,L=%v) ", j, cs, n.at[j], n.dws[sdf].ObservedPos(j) == doorway.Behind)
	}
	fmt.Fprintf(&b, "} S=%v pend=%v recActive=%v", setKeys(n.suspended), setKeys(n.pendingStatus), n.rec.active)
	return b.String()
}

func setKeys[K ~int](m map[K]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, int(k))
	}
	sort.Ints(out)
	return out
}
