package lme1

import (
	"fmt"

	"lme/internal/coloring"
	"lme/internal/core"
	"lme/internal/trace"
)

// recolorRun is the state of one execution of the recolouring module
// (Algorithm 2's wrapper around the colouring procedure). It exists from
// the moment the node crosses SD^r until a new colour is chosen; outside
// that window every incoming colouring message draws a NACK (Lines 40–41).
type recolorRun struct {
	active  bool
	variant Variant

	// r is the participant set R, initially N (Line 37); NACKs and
	// departures shrink it.
	r map[core.NodeID]bool

	// queue buffers colouring messages per sender; each iteration
	// consumes exactly one message from every member of R, which keeps
	// the per-pair iteration alignment the FIFO links guarantee.
	queue map[core.NodeID][]core.Message

	// Greedy procedure (Algorithm 4) state.
	g            coloring.EdgeSet
	finishedSeen bool

	// Fast procedure (Algorithm 5) state.
	sched     []coloring.Family
	phIdx     int
	tempColor int

	// Colour-reduction extension (VariantLinialReduce) state.
	reducing    bool
	reduceRound int
	reduceTotal int
	palette     int // palette size entering the reduction
}

// startRecolor runs when SD^r is crossed: initialise R and launch the
// selected colouring procedure.
func (n *Node) startRecolor() {
	rec := &n.rec
	rec.active = true
	rec.variant = n.cfg.Variant
	rec.r = make(map[core.NodeID]bool)
	for _, j := range n.sortedNeighbors() {
		rec.r[j] = true
	}
	rec.queue = make(map[core.NodeID][]core.Message)
	rec.finishedSeen = false
	switch n.cfg.Variant {
	case VariantLinial, VariantLinialReduce:
		sched, err := coloring.Schedule(n.cfg.N, n.cfg.Delta)
		if err != nil {
			panic(fmt.Sprintf("lme1: Linial schedule for n=%d δ=%d: %v", n.cfg.N, n.cfg.Delta, err))
		}
		rec.sched = sched
		rec.phIdx = 0
		rec.tempColor = int(n.env.ID())
		rec.reducing = false
		rec.reduceRound = 0
		rec.reduceTotal = 0
		rec.palette = max(n.cfg.N, 2)
		if len(rec.sched) > 0 {
			rec.palette = rec.sched[len(rec.sched)-1].M
		}
		if n.cfg.Variant == VariantLinialReduce {
			rec.reduceTotal = coloring.ReductionRounds(rec.palette, n.cfg.Delta)
		}
		if len(rec.sched) == 0 && rec.reduceTotal == 0 {
			// Nothing to reduce (n already within the final
			// palette): IDs are legal as-is.
			n.finishRecolor(rec.tempColor)
			return
		}
		if len(rec.sched) == 0 {
			rec.reducing = true
		}
	default:
		rec.g = coloring.NewEdgeSet()
	}
	n.beginRecolorIteration()
}

// beginRecolorIteration sends this iteration's message to every
// participant (Algorithm 4 Line 65 / Algorithm 5 Line 65) and checks
// whether the replies are already buffered.
func (n *Node) beginRecolorIteration() {
	rec := &n.rec
	var msg core.Message
	switch {
	case rec.reducing:
		msg = msgTempColor{Phase: len(rec.sched) + rec.reduceRound, Color: rec.tempColor}
	case rec.variant == VariantLinial || rec.variant == VariantLinialReduce:
		msg = msgTempColor{Phase: rec.phIdx, Color: rec.tempColor}
	default:
		msg = msgGraph{Edges: rec.g.Edges(), Finished: false}
	}
	for _, j := range n.sortedNeighbors() {
		if rec.r[j] {
			n.env.Send(j, msg)
		}
	}
	n.tryCompleteIteration()
}

// onRecolorMsg handles an incoming colouring-procedure message.
func (n *Node) onRecolorMsg(from core.NodeID, msg core.Message) {
	rec := &n.rec
	if !rec.active || !rec.r[from] {
		// Not participating (Lines 40–41), or the sender is no
		// longer a participant from this node's perspective.
		n.env.Send(from, msgNACK{})
		return
	}
	rec.queue[from] = append(rec.queue[from], msg)
	n.tryCompleteIteration()
}

// tryCompleteIteration consumes one buffered message from every member of
// R once all are available, then advances the procedure.
func (n *Node) tryCompleteIteration() {
	rec := &n.rec
	if !rec.active {
		return
	}
	if len(rec.r) == 0 {
		// No neighbour is recolouring concurrently: both procedures
		// return 0 immediately (Algorithm 4 Line 69 / Algorithm 5
		// Line 71).
		n.finishRecolor(0)
		return
	}
	for j := range rec.r {
		if len(rec.queue[j]) == 0 {
			return
		}
	}
	consumed := make(map[core.NodeID]core.Message, len(rec.r))
	for _, j := range n.sortedNeighbors() {
		if !rec.r[j] {
			continue
		}
		consumed[j] = rec.queue[j][0]
		rec.queue[j] = rec.queue[j][1:]
	}
	switch {
	case rec.reducing:
		n.advanceReduce(consumed)
	case rec.variant == VariantLinial || rec.variant == VariantLinialReduce:
		n.advanceLinial(consumed)
	default:
		n.advanceGreedy(consumed)
	}
}

// advanceGreedy is the loop body of Algorithm 4 (Lines 64–68) followed by
// the termination handling (Lines 69–72).
func (n *Node) advanceGreedy(consumed map[core.NodeID]core.Message) {
	rec := &n.rec
	changed := false
	for _, j := range n.sortedNeighbors() {
		m, ok := consumed[j]
		if !ok {
			continue
		}
		gm, ok := m.(msgGraph)
		if !ok {
			n.tracef("greedy recolor got %T from %d; dropping participant", m, j)
			delete(rec.r, j)
			continue
		}
		if rec.g.Add(n.env.ID(), j) {
			changed = true
		}
		for _, e := range gm.Edges {
			if rec.g.Add(e.A, e.B) {
				changed = true
			}
		}
		if gm.Finished {
			rec.finishedSeen = true
		}
	}
	if len(rec.r) == 0 {
		n.finishRecolor(0)
		return
	}
	if !changed || rec.finishedSeen {
		// Line 71: final transmission with finished = true, then the
		// deterministic local colouring (Line 72).
		final := msgGraph{Edges: rec.g.Edges(), Finished: true}
		for _, j := range n.sortedNeighbors() {
			if rec.r[j] {
				n.env.Send(j, final)
			}
		}
		n.finishRecolor(coloring.GreedyColor(rec.g, n.env.ID()))
		return
	}
	n.beginRecolorIteration()
}

// advanceLinial is the loop body of Algorithm 5 (Lines 64–70).
func (n *Node) advanceLinial(consumed map[core.NodeID]core.Message) {
	rec := &n.rec
	others := make([]int, 0, len(consumed))
	for _, j := range n.sortedNeighbors() {
		m, ok := consumed[j]
		if !ok {
			continue
		}
		tm, ok := m.(msgTempColor)
		if !ok {
			n.tracef("linial recolor got %T from %d; dropping participant", m, j)
			delete(rec.r, j)
			continue
		}
		others = append(others, tm.Color)
	}
	next, err := rec.sched[rec.phIdx].PickFree(rec.tempColor, others)
	if err != nil {
		// Violated knowledge assumption (more than δ concurrent
		// neighbours): a configuration error, surfaced loudly.
		panic(fmt.Sprintf("lme1: node %d phase %d: %v", n.env.ID(), rec.phIdx, err))
	}
	rec.tempColor = next
	rec.phIdx++
	if rec.phIdx >= len(rec.sched) {
		if rec.variant == VariantLinialReduce && rec.reduceTotal > 0 {
			if len(rec.r) == 0 {
				n.finishRecolor(0)
				return
			}
			rec.reducing = true
			n.beginRecolorIteration()
			return
		}
		n.finishRecolor(rec.tempColor)
		return
	}
	if len(rec.r) == 0 {
		n.finishRecolor(0)
		return
	}
	n.beginRecolorIteration()
}

// advanceReduce runs one colour-elimination round of the
// VariantLinialReduce extension: the holders of the current top colour —
// an independent set among the participants, since their colouring is
// legal — re-pick the smallest colour free among the participants'
// colours; everyone else keeps theirs.
func (n *Node) advanceReduce(consumed map[core.NodeID]core.Message) {
	rec := &n.rec
	others := make([]int, 0, len(consumed))
	for _, j := range n.sortedNeighbors() {
		m, ok := consumed[j]
		if !ok {
			continue
		}
		tm, ok := m.(msgTempColor)
		if !ok {
			n.tracef("reduce round got %T from %d; dropping participant", m, j)
			delete(rec.r, j)
			continue
		}
		others = append(others, tm.Color)
	}
	top := rec.palette - 1 - rec.reduceRound
	rec.tempColor = coloring.ReduceStep(rec.tempColor, top, others)
	rec.reduceRound++
	if rec.reduceRound >= rec.reduceTotal {
		n.finishRecolor(rec.tempColor)
		return
	}
	if len(rec.r) == 0 {
		n.finishRecolor(0)
		return
	}
	n.beginRecolorIteration()
}

// finishRecolor is the wrapper's Lines 38–39: negate the procedure's
// result so recoloured nodes sit below every post-critical-section colour,
// announce it, and continue to the fork-collection doorway (Figure 5).
func (n *Node) finishRecolor(ret int) {
	rec := &n.rec
	rec.active = false
	rec.queue = nil
	n.myColor = -ret - 1
	n.needsRecolor = false
	if n.emit != nil && n.wants(trace.KindRecolor) {
		n.emit(trace.Event{Kind: trace.KindRecolor, Peer: trace.NoNode, Detail: fmt.Sprint(n.myColor)})
	}
	n.env.Broadcast(msgUpdateColor{Color: n.myColor})
	n.ph = phEnterADf
	n.enterDoorway(adf)
}

// abort cancels a recolouring in progress (the mover's Line 52 handling).
func (rec *recolorRun) abort(n *Node) {
	rec.active = false
	rec.queue = nil
}

// onNACK removes a non-participant from R (Lines 42–43).
func (rec *recolorRun) onNACK(n *Node, from core.NodeID) {
	if !rec.active {
		return
	}
	delete(rec.r, from)
	delete(rec.queue, from)
	n.tryCompleteIteration()
}

// onNeighborLost removes a departed neighbour from R (Line 61).
func (rec *recolorRun) onNeighborLost(n *Node, j core.NodeID) {
	if !rec.active {
		return
	}
	delete(rec.r, j)
	delete(rec.queue, j)
	n.tryCompleteIteration()
}
