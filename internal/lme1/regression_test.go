package lme1_test

import (
	"testing"

	"lme/internal/core"
	"lme/internal/harness"
	"lme/internal/lme1"
	"lme/internal/workload"
)

// TestWantBackFlushAtDoorwayEntry is the regression test for a deadlock
// the property fuzzer found: node A (behind SD^f) grants its low fork to
// node B with the want-back flag; B ends up holding ALL its forks while
// parked at the AD^f entry — blocked by A itself — so unless B eats right
// there (the paper's unguarded Line 19), the want-back never flushes and
// A waits forever. The failing configuration was a 12-node geometric
// graph; the fixed seed below reproduced a global freeze before the fix.
func TestWantBackFlushAtDoorwayEntry(t *testing.T) {
	seed := uint64(0x9999ca68ac1c3db0)
	radius := harness.ConnectedRadius(12) * 1.3
	pts, err := harness.GeometricPoints(12, radius, seed%100+1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.Build(harness.Spec{
		Seed:   seed,
		Points: pts,
		Radius: radius,
		NewProtocol: func(id core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{Variant: lme1.VariantLinial, N: 12, Delta: 11})
		},
		Workload: workload.Config{EatTime: 3_000, ThinkMax: 5_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(2_500_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v (want-back flush regression)", missing)
	}
	// The run must keep making progress, not freeze after first meals.
	for i := 0; i < 12; i++ {
		if c := r.Recorder.EatCount(core.NodeID(i)); c < 5 {
			t.Fatalf("node %d ate only %d times", i, c)
		}
	}
}
