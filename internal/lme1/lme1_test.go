package lme1_test

import (
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
	"lme/internal/lme1"
	"lme/internal/sim"
	"lme/internal/workload"
)

// factory returns a protocol factory for the given variant sized for the
// given system.
func factory(v lme1.Variant, n, delta int) func(core.NodeID) core.Protocol {
	return func(id core.NodeID) core.Protocol {
		return lme1.New(lme1.Config{Variant: v, N: n, Delta: delta})
	}
}

func bothVariants(t *testing.T, run func(t *testing.T, v lme1.Variant)) {
	t.Helper()
	for _, v := range []lme1.Variant{lme1.VariantGreedy, lme1.VariantLinial, lme1.VariantLinialReduce} {
		t.Run(v.String(), func(t *testing.T) { run(t, v) })
	}
}

func TestStaticLineLiveness(t *testing.T) {
	bothVariants(t, func(t *testing.T, v lme1.Variant) {
		r, err := harness.Build(harness.Spec{
			Seed:        1,
			Points:      harness.LinePoints(8, 0.1),
			Radius:      0.11,
			NewProtocol: factory(v, 8, 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunFor(3_000_000); err != nil {
			t.Fatal(err)
		}
		ok, missing := r.EveryoneAte()
		if !ok {
			t.Fatalf("starved nodes: %v", missing)
		}
		for i := 0; i < 8; i++ {
			if c := r.Recorder.EatCount(core.NodeID(i)); c < 10 {
				t.Fatalf("node %d ate only %d times", i, c)
			}
		}
	})
}

func TestStaticCliqueContention(t *testing.T) {
	bothVariants(t, func(t *testing.T, v lme1.Variant) {
		const n = 6
		r, err := harness.Build(harness.Spec{
			Seed:        2,
			Points:      harness.CliquePoints(n),
			Radius:      0.2,
			NewProtocol: factory(v, n, n-1),
			Workload: workload.Config{
				EatTime:  2_000,
				ThinkMax: 1_000, // near-saturation
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunFor(3_000_000); err != nil {
			t.Fatal(err)
		}
		ok, missing := r.EveryoneAte()
		if !ok {
			t.Fatalf("starved nodes: %v", missing)
		}
	})
}

func TestStaticGeometricManySeeds(t *testing.T) {
	bothVariants(t, func(t *testing.T, v lme1.Variant) {
		for seed := uint64(1); seed <= 4; seed++ {
			pts, err := harness.GeometricPoints(24, 0.28, seed)
			if err != nil {
				t.Fatal(err)
			}
			r, err := harness.Build(harness.Spec{
				Seed:        seed,
				Points:      pts,
				Radius:      0.28,
				NewProtocol: factory(v, 24, 23),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.RunFor(4_000_000); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if ok, missing := r.EveryoneAte(); !ok {
				t.Fatalf("seed %d: starved nodes %v", seed, missing)
			}
		}
	})
}

// TestSingleNodeEatsAlone: a node with no neighbours must sail through all
// doorways and eat immediately.
func TestSingleNodeEatsAlone(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        3,
		Points:      []graph.Point{{X: 0.5, Y: 0.5}},
		Radius:      0.1,
		NewProtocol: factory(lme1.VariantGreedy, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(500_000); err != nil {
		t.Fatal(err)
	}
	if c := r.Recorder.EatCount(0); c < 5 {
		t.Fatalf("lone node ate %d times", c)
	}
}

// TestMobilityRecolorPath: movers relocate between clusters, must
// recolour, and keep making progress; safety must hold throughout.
func TestMobilityRecolorPath(t *testing.T) {
	bothVariants(t, func(t *testing.T, v lme1.Variant) {
		// Two clusters of 4, plus a commuting node.
		pts := append(harness.CliquePoints(4),
			graph.Point{X: 0.8}, graph.Point{X: 0.801}, graph.Point{X: 0.802}, graph.Point{X: 0.803},
			graph.Point{X: 0.0005, Y: 0.002})
		r, err := harness.Build(harness.Spec{
			Seed:        4,
			Points:      pts,
			Radius:      0.05,
			NewProtocol: factory(v, 9, 8),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		w := r.World
		commuter := core.NodeID(8)
		// Commute between the clusters a few times.
		for trip := 0; trip < 6; trip++ {
			dest := graph.Point{X: 0.8, Y: 0.002}
			if trip%2 == 1 {
				dest = graph.Point{X: 0.0005, Y: 0.002}
			}
			w.JumpAt(commuter, dest, 20_000, sim.Time(500_000+trip*700_000))
		}
		if err := r.RunFor(6_000_000); err != nil {
			t.Fatal(err)
		}
		if ok, missing := r.EveryoneAte(); !ok {
			t.Fatalf("starved nodes: %v", missing)
		}
		if c := r.Recorder.EatCount(commuter); c < 3 {
			t.Fatalf("commuter ate only %d times", c)
		}
	})
}

// TestConcurrentRecoloring: a whole clique relocates at once, so every
// node recolours concurrently (Assumption 1 territory), then must reach
// the critical section with the fresh colours.
func TestConcurrentRecoloring(t *testing.T) {
	bothVariants(t, func(t *testing.T, v lme1.Variant) {
		const n = 5
		r, err := harness.Build(harness.Spec{
			Seed:        5,
			Points:      harness.CliquePoints(n),
			Radius:      0.05,
			NewProtocol: factory(v, n, n-1),
			Workload: workload.Config{
				EatTime:        2_000,
				ThinkMin:       5_000,
				ThinkMax:       10_000,
				InitialStagger: 2_000,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		w := r.World
		// Everyone jumps (slightly) at t=1s: all nodes are flagged
		// moving, links re-form among movers, all must recolour.
		for i := 0; i < n; i++ {
			id := core.NodeID(i)
			dest := graph.Point{X: 0.5 + float64(i)*0.001, Y: 0.5}
			w.JumpAt(id, dest, 30_000, 1_000_000)
		}
		if err := r.RunFor(8_000_000); err != nil {
			t.Fatal(err)
		}
		// Everyone must have eaten again after the move.
		for i := 0; i < n; i++ {
			samples := r.Recorder.EatCount(core.NodeID(i))
			if samples < 2 {
				t.Fatalf("node %d ate %d times across the relocation", i, samples)
			}
		}
		// Colour legality among current neighbours at quiescence.
		for i := 0; i < n; i++ {
			pi, ok := w.Protocol(core.NodeID(i)).(*lme1.Node)
			if !ok {
				t.Fatal("protocol type")
			}
			for _, j := range w.Neighbors(core.NodeID(i)) {
				pj, ok := w.Protocol(j).(*lme1.Node)
				if !ok {
					t.Fatal("protocol type")
				}
				if pi.Color() == pj.Color() {
					t.Fatalf("neighbours %d and %d share colour %d", i, j, pi.Color())
				}
			}
		}
	})
}

// miniDriver cycles selected nodes through eat/think with fixed periods;
// used by the scripted scenario tests that need precise control.
type miniDriver struct {
	w interface {
		Protocol(core.NodeID) core.Protocol
	}
	sched *sim.Scheduler
	eat   sim.Time
	think sim.Time
	on    map[core.NodeID]bool
}

func (d *miniDriver) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if !d.on[id] {
		return
	}
	p := d.w.Protocol(id)
	switch new {
	case core.Eating:
		d.sched.After(d.eat, func() {
			if p.State() == core.Eating {
				p.ExitCS()
			}
		})
	case core.Thinking:
		d.sched.After(d.think, func() {
			if p.State() == core.Thinking {
				p.BecomeHungry()
			}
		})
	}
}

// TestFigure6Scenario reproduces §5.1's mobility scenario (Figure 6 and
// experiment E8). The line is p1—p2—p3—p4 with colours 3, 2, 1, 4; node
// IDs are chosen so the crashed p4 initially owns the p3–p4 fork (fork
// ownership goes to the smaller ID) while keeping its high colour:
//
//	position:  x=0     x=0.1   x=0.2   x=0.3
//	role:      p1      p2      p3      p4
//	node ID:   0       1       3       2
//	colour:    3       2       1       4
//
// p4 crashes holding the p3–p4 fork. Then p3 blocks waiting for its
// crashed high neighbour's fork while suspending p2's request for the
// p2–p3 fork (p2 is high for p3); p2 blocks; p1 keeps eating, protected by
// p2's sacrifice. When p3 then moves away, p2 recovers through the return
// path of the fork-collection doorway (Lines 59–60), and p3 — alone — eats.
func TestFigure6Scenario(t *testing.T) {
	const (
		p1 = core.NodeID(0)
		p2 = core.NodeID(1)
		p3 = core.NodeID(3)
		p4 = core.NodeID(2)
	)
	colors := map[core.NodeID]int{p1: 3, p2: 2, p3: 1, p4: 4}
	pts := []graph.Point{{X: 0}, {X: 0.1}, {X: 0.3}, {X: 0.2}} // indexed by ID
	r, err := harness.Build(harness.Spec{
		Seed:   6,
		Points: pts,
		Radius: 0.11,
		NewProtocol: func(id core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{
				Variant:      lme1.VariantGreedy,
				InitialColor: func(id core.NodeID) int { return colors[id] },
			})
		},
		Workload: workload.Config{Participants: []core.NodeID{}}, // fully scripted
	})
	if err != nil {
		t.Fatal(err)
	}
	w := r.World
	sched := w.Scheduler()
	md := &miniDriver{w: w, sched: sched, eat: 5_000, think: 5_000,
		on: map[core.NodeID]bool{p1: true, p2: true, p3: true}}
	w.AddStateListener(md)
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}

	w.CrashAt(p4, 0) // p4 dies holding the p3–p4 fork, colour 4
	for _, id := range []core.NodeID{p1, p2, p3} {
		id := id
		sched.At(100_000, func() { w.Protocol(id).BecomeHungry() })
	}
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	// Phase 1 assertions: p3 and p2 blocked; p1 ate its first meal and
	// then parks at the fork-doorway entry (it is within the algorithm's
	// failure locality radius, so blocking is permitted there — the Fig 6
	// "protection" claim concerns the fork-collection module alone).
	if c := r.Recorder.EatCount(p3); c != 0 {
		t.Fatalf("p3 ate %d times despite the crashed fork holder", c)
	}
	if c := r.Recorder.EatCount(p2); c != 0 {
		t.Fatalf("p2 ate %d times, expected blocked by p3's suspension", c)
	}
	p1Phase1 := r.Recorder.EatCount(p1)
	if p1Phase1 < 1 {
		t.Fatal("p1 never ate")
	}

	// Phase 2: p3 moves away; p2 must recover via the return path, p3 —
	// alone in its new neighbourhood — eats, and p1 resumes cycling once
	// the doorway unblocks.
	w.JumpAt(p3, graph.Point{X: 0.9, Y: 0.9}, 20_000, 3_100_000)
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	if c := r.Recorder.EatCount(p2); c < 1 {
		t.Fatal("p2 did not recover after p3 moved away (return path broken)")
	}
	if c := r.Recorder.EatCount(p3); c < 1 {
		t.Fatal("p3 did not eat alone after moving")
	}
	if c := r.Recorder.EatCount(p1); c < p1Phase1+5 {
		t.Fatalf("p1 did not resume after recovery: %d → %d", p1Phase1, c)
	}
}

// TestCrashFailureLocalityLine: on a long line, a crash in the middle must
// not starve distant nodes (empirical failure locality, experiment E2's
// core mechanism).
func TestCrashFailureLocalityLine(t *testing.T) {
	const n = 16
	r, err := harness.Build(harness.Spec{
		Seed:        7,
		Points:      harness.LinePoints(n, 0.1),
		Radius:      0.11,
		NewProtocol: factory(lme1.VariantGreedy, n, 2),
		Workload: workload.Config{
			EatTime:  3_000,
			ThinkMax: 3_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	crashAt := sim.Time(1_000_000)
	r.World.CrashAt(n/2, crashAt)
	if err := r.RunFor(8_000_000); err != nil {
		t.Fatal(err)
	}
	// The ends of the line (distance 7–8 from the crash, beyond the
	// algorithm's failure locality) must still be eating long after the
	// crash.
	for _, id := range []core.NodeID{0, n - 1} {
		if last, ok := r.Prober.LastEat(id); !ok || last < 6_000_000 {
			t.Fatalf("node %d stopped eating after the crash (last=%v ok=%v)", id, last, ok)
		}
	}
}

// TestResponseTimeRecorded sanity-checks that Definition 1 samples flow.
func TestResponseTimeRecorded(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        8,
		Points:      harness.LinePoints(5, 0.1),
		Radius:      0.11,
		NewProtocol: factory(lme1.VariantGreedy, 5, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(2_000_000); err != nil {
		t.Fatal(err)
	}
	st := r.Recorder.Stats()
	if st.Count < 20 {
		t.Fatalf("only %d response samples", st.Count)
	}
	if st.Max <= 0 || st.Mean <= 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
}
