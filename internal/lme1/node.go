// Package lme1 implements the first local mutual exclusion algorithm of
// the paper (Chapter 5): fork collection with colour-based priorities,
// executed behind a double doorway with a return path, preceded — for
// nodes that moved — by a recolouring module behind its own double
// doorway (Figure 5). Two colouring procedures are provided, the greedy
// one of Algorithm 4 (failure locality n, response time O((n+δ³)δ)) and
// the Linial-based one of Algorithm 5 (failure locality max(log* n, 4)+2,
// response time O((log* n+δ⁴)δ)).
package lme1

import (
	"fmt"
	"sort"

	"lme/internal/core"
	"lme/internal/doorway"
	"lme/internal/trace"
)

// Variant selects the colouring procedure of the recolouring module.
type Variant int

// The two colouring procedures of §5.4.
const (
	// VariantGreedy is the simple graph-flooding greedy colouring
	// (Algorithm 4). It needs no knowledge of n or δ.
	VariantGreedy Variant = iota + 1
	// VariantLinial is the fast colouring based on Linial's algorithm
	// over cover-free families (Algorithm 5); it assumes n and δ are
	// known to all nodes.
	VariantLinial
	// VariantLinialReduce extends VariantLinial with the deterministic
	// colour-reduction rounds the paper's discussion chapter mentions:
	// after the O(log* n) Linial phases it eliminates one colour per
	// round until the palette is δ+1, trading O(δ²) extra rounds for a
	// smaller Δ and hence a better fork-collection rank bound.
	VariantLinialReduce
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantGreedy:
		return "greedy"
	case VariantLinial:
		return "linial"
	case VariantLinialReduce:
		return "linial-reduce"
	default:
		return "invalid"
	}
}

// Config parameterises a node of Algorithm 1.
type Config struct {
	// Variant selects the recolouring procedure.
	Variant Variant

	// N and Delta are the system size and maximum degree, required by
	// VariantLinial (the paper's knowledge assumption for that
	// variant).
	N, Delta int

	// InitialColor returns the pre-computed legal colour of a node; the
	// default colours each node with its ID, the paper's "simple way to
	// guarantee the legal coloring". It must be a globally consistent
	// function, since nodes derive their neighbours' initial colours
	// from it.
	InitialColor func(core.NodeID) int

	// RecolorFirst makes every node run the recolouring module on its
	// first hungry journey, realising the paper's "the recoloring
	// module is also executed by each node in order to obtain an
	// initial color" (Ch. 5) and its use as a distributed pre-colouring
	// computation (Ch. 7). ID colours still seed the interim ordering.
	RecolorFirst bool
}

// phase tracks where in Figure 5's pipeline the node currently is; it is
// redundant with the doorway states and used for traces and assertions.
type phase int

const (
	phIdle phase = iota
	phAwaitStatus
	phEnterADr
	phEnterSDr
	phRecolor
	phEnterADf
	phEnterSDf
	phBehindSDf
)

// Node is one node's instance of Algorithm 1. It implements
// core.Protocol; all methods are driven by the runtime, one event at a
// time.
type Node struct {
	env core.Env
	cfg Config

	// emit publishes protocol events (doorway crossings, recolouring
	// results, diagnostics) to the runtime's trace bus; nil when the
	// runtime does not implement trace.Emitter. wants is the runtime's
	// per-kind interest mask (trace.Interest) — consulted before
	// assembling an event so dark kinds cost nothing; set whenever emit
	// is, defaulting to always-true for runtimes without the mask.
	emit  func(trace.Event)
	wants func(trace.Kind) bool

	state core.State
	ph    phase

	// myColor is color[i]; colors holds the known colours of current
	// neighbours (absence = the paper's ⊥).
	myColor int
	colors  map[core.NodeID]int

	// at[j] — this node holds the fork shared with j. The key set of at
	// is exactly the current neighbour set N.
	at map[core.NodeID]bool

	// nbrs mirrors the key set of at as a sorted ID slice, maintained
	// incrementally on link up/down so deterministic message emission
	// never sorts a fresh map snapshot.
	nbrs []core.NodeID

	// suspended is S: neighbours with suspended fork requests.
	suspended map[core.NodeID]bool

	dws [numDoorways]*doorway.Doorway

	// needsRecolor is set when the node moves into a new neighbourhood
	// and cleared when a new legal colour is obtained.
	needsRecolor bool

	// viaRecolor marks a hungry journey that went through the
	// recolouring module, so that crossing AD^f triggers the exit code
	// of the first double doorway (Figure 5).
	viaRecolor bool

	// pendingStatus holds new neighbours whose status message (Line 46)
	// the mover still awaits (Line 53).
	pendingStatus map[core.NodeID]bool

	rec recolorRun
}

var _ core.Protocol = (*Node)(nil)

// New creates a node of Algorithm 1.
func New(cfg Config) *Node {
	if cfg.Variant == 0 {
		cfg.Variant = VariantGreedy
	}
	if cfg.InitialColor == nil {
		cfg.InitialColor = func(id core.NodeID) int { return int(id) }
	}
	return &Node{
		cfg:           cfg,
		state:         core.Thinking,
		colors:        make(map[core.NodeID]int),
		at:            make(map[core.NodeID]bool),
		suspended:     make(map[core.NodeID]bool),
		pendingStatus: make(map[core.NodeID]bool),
	}
}

// Init implements core.Protocol: initial forks go to the smaller ID of
// each link, initial colours come from the globally known InitialColor.
func (n *Node) Init(env core.Env) {
	n.env = env
	if em, ok := env.(trace.Emitter); ok {
		n.emit = em.Emit
		n.wants = func(trace.Kind) bool { return true }
		if in, ok := env.(trace.Interest); ok {
			n.wants = in.Wants
		}
	}
	me := env.ID()
	n.myColor = n.cfg.InitialColor(me)
	n.needsRecolor = n.cfg.RecolorFirst
	neighbors := env.Neighbors()
	n.nbrs = append(n.nbrs[:0], neighbors...) // copy: Neighbors is a view
	for _, j := range neighbors {
		n.at[j] = me < j
		n.colors[j] = n.cfg.InitialColor(j)
	}
	for d := dwIndex(0); d < numDoorways; d++ {
		d := d
		kind := doorway.Asynchronous
		if d == sdr || d == sdf {
			kind = doorway.Synchronous
		}
		n.dws[d] = doorway.New(kind, neighbors,
			func(cross bool) {
				n.emitDoorway(d, cross)
				env.Broadcast(msgDoorway{D: d, Cross: cross})
			},
			func() { n.onCross(d) })
	}
}

// State implements core.Protocol.
func (n *Node) State() core.State { return n.state }

// Color exposes the node's current colour (for tests and traces).
func (n *Node) Color() int { return n.myColor }

// NeedsRecolor reports whether the node will recolour on its next hungry
// journey (for tests).
func (n *Node) NeedsRecolor() bool { return n.needsRecolor }

// BecomeHungry implements core.Protocol: the application requests the
// critical section.
func (n *Node) BecomeHungry() {
	if n.state != core.Thinking {
		return
	}
	n.setState(core.Hungry)
	n.startJourney()
}

// startJourney routes a hungry node into Figure 5's pipeline.
func (n *Node) startJourney() {
	switch {
	case len(n.pendingStatus) > 0:
		// Line 53: still waiting for new neighbours' status.
		n.ph = phAwaitStatus
	case n.needsRecolor:
		// Line 55: moved since last legal colour — recolour first.
		n.viaRecolor = true
		n.ph = phEnterADr
		n.enterDoorway(adr)
	default:
		n.ph = phEnterADf
		n.enterDoorway(adf)
	}
}

// onCross dispatches doorway crossings.
func (n *Node) onCross(d dwIndex) {
	switch d {
	case adr:
		n.ph = phEnterSDr
		n.enterDoorway(sdr)
	case sdr:
		n.ph = phRecolor
		n.startRecolor()
	case adf:
		if n.viaRecolor {
			// Exit code of the first double doorway runs here
			// (Figure 5): SD^r then AD^r.
			n.viaRecolor = false
			n.dws[sdr].Exit()
			n.dws[adr].Exit()
		}
		n.ph = phEnterSDf
		n.enterDoorway(sdf)
	case sdf:
		n.ph = phBehindSDf
		n.onCrossSDf()
	}
}

// onCrossSDf is Lines 1–4: the fork collection module begins.
func (n *Node) onCrossSDf() {
	n.maybeEat()
	if n.allLowForks() {
		n.requestHighForks()
	} else {
		n.requestLowForks()
	}
}

// ExitCS implements core.Protocol: Lines 5–9.
func (n *Node) ExitCS() {
	if n.state != core.Eating {
		return
	}
	n.setState(core.Thinking)
	// Line 6: smallest non-negative colour unused by any neighbour —
	// legal because it is chosen in exclusion.
	n.myColor = n.smallestFreeColor()
	n.needsRecolor = false
	n.env.Broadcast(msgUpdateColor{Color: n.myColor})
	for _, j := range n.sortedSuspended() {
		n.sendFork(j)
	}
	// Line 9 exits the fork doorways. A node that ate from a doorway
	// *entry* (the Line 19 corner in maybeEat) can still hold pending —
	// or, after an interrupted recolouring journey, crossed — entries in
	// the recolouring doorways; its colour is legal now, so those
	// entries are moot and must not fire into a later journey. Exit or
	// abort all four (a no-op for doorways it never entered).
	n.viaRecolor = false
	n.exitAllDoorways()
}

// OnMessage implements core.Protocol.
func (n *Node) OnMessage(from core.NodeID, msg core.Message) {
	if _, isNeighbor := n.at[from]; !isNeighbor {
		// The link vanished while the message was queued locally;
		// treat as destroyed with the link.
		return
	}
	switch m := msg.(type) {
	case msgDoorway:
		pos := doorway.Outside
		if m.Cross {
			pos = doorway.Behind
		}
		n.dws[m.D].Observe(from, pos)
	case msgUpdateColor:
		n.colors[from] = m.Color
		n.onColorChanged(from)
	case msgStatus:
		n.onStatus(from, m)
	case msgReq:
		n.onReq(from)
	case msgFork:
		n.onFork(from, m.Flag)
	case msgNACK:
		n.rec.onNACK(n, from)
	case msgGraph:
		n.onRecolorMsg(from, m)
	case msgTempColor:
		n.onRecolorMsg(from, m)
	default:
		n.tracef("unknown message %T from %d", msg, from)
	}
}

// onColorChanged re-evaluates fork requests after a neighbour announced a
// new colour. A neighbour's exit-time recolouring (Line 6) can reclassify
// a missing fork from high to low after this node already crossed SD^f and
// issued its Line-4 requests; without a fresh request for the
// newly-reclassified low fork, the node would wait forever (the paper's
// pseudo-code leaves this re-evaluation implicit; see the erratum notes in
// DESIGN.md). Duplicate requests are harmless: a request arriving while
// the fork is already in transit to the requester is dropped.
func (n *Node) onColorChanged(j core.NodeID) {
	if n.state != core.Hungry || !n.dws[sdf].Behind() {
		return
	}
	if c, ok := n.colors[j]; ok && !n.at[j] && c < n.myColor {
		n.env.Send(j, msgReq{})
	}
	if n.allLowForks() {
		// The change may also have flipped a missing low fork to
		// high, newly satisfying all-low-forks.
		n.requestHighForks()
	}
}

// onStatus handles the static neighbour's reply of Line 46 at the mover.
func (n *Node) onStatus(from core.NodeID, m msgStatus) {
	n.colors[from] = m.Color
	for d := dwIndex(0); d < numDoorways; d++ {
		n.dws[d].Observe(from, m.Pos[d])
	}
	delete(n.pendingStatus, from)
	n.checkStatusDrain()
}

// checkStatusDrain resumes a waiting hungry mover once every awaited
// status message arrived (Lines 53–55).
func (n *Node) checkStatusDrain() {
	if len(n.pendingStatus) > 0 {
		return
	}
	if n.state == core.Hungry && n.ph == phAwaitStatus {
		n.startJourney()
	}
}

// onReq is Lines 10–16.
func (n *Node) onReq(j core.NodeID) {
	if !n.at[j] {
		// The fork is in transit to j (FIFO makes any other
		// interleaving impossible); the request is moot.
		return
	}
	cj, known := n.colors[j]
	if !known {
		// Cannot rank an uncoloured requester; suspend (it will be
		// granted at the latest when this node leaves the critical
		// section). The protocol never produces this case because a
		// node broadcasts its colour before requesting.
		n.suspended[j] = true
		return
	}
	busy := n.collecting()
	switch {
	case cj > n.myColor && (!n.allLowForks() || !busy):
		n.sendFork(j)
	case cj < n.myColor && (!n.allForks() || !busy):
		n.sendFork(j)
		n.releaseHighForks()
	default:
		n.suspended[j] = true
	}
}

// collecting reports whether the node is engaged in fork collection or in
// the critical section — the paper's "behind SD^f". Eating is included
// explicitly because Line 19 lets a node start eating while still at the
// doorway entry (see maybeEat); an eater must suspend requests no matter
// where it stands relative to the doorway.
func (n *Node) collecting() bool {
	return n.dws[sdf].Behind() || n.state == core.Eating
}

// onFork is Lines 17–23.
func (n *Node) onFork(j core.NodeID, flag bool) {
	n.at[j] = true
	if n.state == core.Thinking {
		// Stale arrival after the hungry journey ended; honour the
		// want-back flag and keep the fork otherwise.
		if flag {
			n.sendFork(j)
		}
		return
	}
	n.maybeEat()
	if n.allLowForks() {
		if flag {
			n.suspended[j] = true
		}
		n.requestHighForks()
	} else if flag {
		n.sendFork(j)
	}
}

// OnLinkUp implements core.Protocol: Algorithm 3.
func (n *Node) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	if iAmMoving {
		n.onLinkUpMoving(peer)
	} else {
		n.onLinkUpStatic(peer)
	}
}

// onLinkUpStatic is Lines 44–46.
func (n *Node) onLinkUpStatic(j core.NodeID) {
	n.nbrs = core.InsertID(n.nbrs, j)
	n.at[j] = true
	delete(n.colors, j) // ⊥ until the newcomer announces its colour
	var pos [numDoorways]doorway.Pos
	for d := dwIndex(0); d < numDoorways; d++ {
		n.dws[d].AddNeighbor(j, doorway.Outside)
		pos[d] = doorway.Outside
		if n.dws[d].Behind() {
			pos[d] = doorway.Behind
		}
	}
	n.env.Send(j, msgStatus{Color: n.myColor, Pos: pos})
}

// onLinkUpMoving is Lines 47–55.
func (n *Node) onLinkUpMoving(j core.NodeID) {
	n.nbrs = core.InsertID(n.nbrs, j)
	n.at[j] = false
	delete(n.colors, j)
	if n.collecting() {
		if n.state == core.Eating {
			// Line 50: preserve safety — the newcomer's fork is
			// owned by the static side. (collecting() rather than
			// the paper's "behind SD^f" because Line 19 permits
			// eating at the doorway entry.)
			n.setState(core.Hungry)
		}
		for _, k := range n.sortedSuspended() {
			n.sendFork(k)
		}
	}
	n.rec.abort(n)
	n.exitAllDoorways()
	n.viaRecolor = false
	n.needsRecolor = true
	// Until the status message arrives, the newcomer's doorway
	// positions are unknown; assume Behind (conservative — prevents
	// crossing past an unobserved neighbour).
	for d := dwIndex(0); d < numDoorways; d++ {
		n.dws[d].AddNeighbor(j, doorway.Behind)
	}
	n.pendingStatus[j] = true
	if n.state == core.Hungry {
		n.ph = phAwaitStatus
	}
}

// OnLinkDown implements core.Protocol: Lines 56–61 plus the fork/colour
// cleanup performed by the link-level protocol (the shared fork is
// destroyed with the link).
func (n *Node) OnLinkDown(j core.NodeID) {
	hadFork := n.at[j]
	cj, known := n.colors[j]
	wasLow := known && cj < n.myColor
	n.nbrs = core.RemoveID(n.nbrs, j)
	delete(n.at, j)
	delete(n.colors, j)
	delete(n.suspended, j)
	delete(n.pendingStatus, j)
	n.rec.onNeighborLost(n, j)

	behindFork := n.dws[sdf].Behind()
	if behindFork && !hadFork && wasLow {
		// Lines 59–60 (the Figure 6 scenario): a low neighbour moved
		// away holding the shared fork — leave the synchronous
		// doorway, release the suspended requests, and return to its
		// entry code.
		n.tracef("return path: low neighbour %d left with our fork", j)
		for _, k := range n.sortedSuspended() {
			n.sendFork(k)
		}
		n.dws[sdf].Exit()
		for d := dwIndex(0); d < numDoorways; d++ {
			n.dws[d].Forget(j)
		}
		n.ph = phEnterSDf
		n.enterDoorway(sdf)
		return
	}
	for d := dwIndex(0); d < numDoorways; d++ {
		n.dws[d].Forget(j)
	}
	n.checkStatusDrain()
	if behindFork && n.state == core.Hungry {
		// The departed neighbour may have been the last missing
		// fork; re-evaluate progress (§5.1's "p_i is able to proceed
		// with fork collection").
		n.maybeEat()
		if n.state == core.Hungry && n.allLowForks() {
			n.requestHighForks()
		}
	}
}

// maybeEat is Line 2/19: a hungry node enters the critical section the
// moment it holds every fork. Deliberately NOT guarded by "behind SD^f":
// safety comes from fork ownership alone, and a node parked at a doorway
// entry while holding all forks (it can get the last one through a
// flagged want-back grant) must eat, or the want-back in its S set never
// flushes and the granter deadlocks behind SD^f waiting for it — a cycle
// the property fuzzer found when this was guarded. The recolouring phases
// are unreachable with all forks (a mover always lacks its new static
// neighbours' forks), which the rec.active check asserts defensively.
func (n *Node) maybeEat() {
	if n.state != core.Hungry || !n.allForks() {
		return
	}
	if n.rec.active || len(n.pendingStatus) > 0 {
		n.tracef("all forks while recolouring/awaiting status — not eating")
		return
	}
	n.setState(core.Eating)
}

// exitAllDoorways realises Line 52's "exit any doorway": broadcast exits
// for crossed doorways and abort entries in progress.
func (n *Node) exitAllDoorways() {
	for _, d := range []dwIndex{sdf, adf, sdr, adr} {
		if n.dws[d].Behind() {
			n.dws[d].Exit()
		} else {
			if n.dws[d].Entering() && n.emit != nil && n.wants(trace.KindDoorway) {
				// Aborts are silent on the wire (nothing was announced)
				// but the span layer must see the entry end, or the
				// node would look parked at this doorway forever.
				n.emit(trace.Event{Kind: trace.KindDoorway, Peer: trace.NoNode, New: "abort", Detail: d.String()})
			}
			n.dws[d].Abort()
		}
	}
	n.ph = phIdle
}

// allForks is the all-forks macro.
func (n *Node) allForks() bool {
	for _, have := range n.at {
		if !have {
			return false
		}
	}
	return true
}

// allLowForks is the all-low-forks macro: forks shared with lower-coloured
// neighbours. Neighbours with unknown colour are newly arrived movers
// whose fork this node owns by construction, so they never block it.
func (n *Node) allLowForks() bool {
	for j, have := range n.at {
		if have {
			continue
		}
		if c, ok := n.colors[j]; ok && c < n.myColor {
			return false
		}
	}
	return true
}

// requestLowForks is Lines 24–26.
func (n *Node) requestLowForks() {
	for _, j := range n.sortedNeighbors() {
		if c, ok := n.colors[j]; ok && c < n.myColor && !n.at[j] {
			n.env.Send(j, msgReq{})
		}
	}
}

// requestHighForks is Lines 27–29.
func (n *Node) requestHighForks() {
	for _, j := range n.sortedNeighbors() {
		if c, ok := n.colors[j]; ok && c > n.myColor && !n.at[j] {
			n.env.Send(j, msgReq{})
		}
	}
}

// sendFork is Lines 30–32.
func (n *Node) sendFork(j core.NodeID) {
	if !n.at[j] {
		return
	}
	flag := false
	if c, ok := n.colors[j]; ok {
		flag = c < n.myColor && n.collecting() && n.state != core.Eating
	}
	n.env.Send(j, msgFork{Flag: flag})
	n.at[j] = false
	delete(n.suspended, j)
}

// releaseHighForks is Lines 33–35.
func (n *Node) releaseHighForks() {
	for _, j := range n.sortedSuspended() {
		if c, ok := n.colors[j]; ok && c > n.myColor && n.at[j] {
			n.sendFork(j)
		}
	}
}

// smallestFreeColor implements Line 6.
func (n *Node) smallestFreeColor() int {
	used := make(map[int]bool, len(n.colors))
	for _, c := range n.colors {
		used[c] = true
	}
	c := 0
	for used[c] {
		c++
	}
	return c
}

func (n *Node) setState(s core.State) {
	if n.state == s {
		return
	}
	n.state = s
	n.env.SetState(s)
}

// sortedNeighbors returns the key set of at (= N) in ID order, for
// deterministic message emission. The returned slice is the node's
// incrementally maintained adjacency cache: a read-only view, valid until
// the next link change.
func (n *Node) sortedNeighbors() []core.NodeID {
	return n.nbrs
}

func (n *Node) sortedSuspended() []core.NodeID {
	out := make([]core.NodeID, 0, len(n.suspended))
	for j := range n.suspended {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// enterDoorway publishes the doorway "enter" event and begins the entry
// protocol. The event is emitted before BeginEntry so that when the entry
// succeeds within the call (every neighbour already Outside), the stream
// still shows enter ≤ cross — span consumers rely on that order to open a
// doorway-wait phase before it closes.
func (n *Node) enterDoorway(d dwIndex) {
	if n.emit != nil && n.wants(trace.KindDoorway) {
		n.emit(trace.Event{Kind: trace.KindDoorway, Peer: trace.NoNode, New: "enter", Detail: d.String()})
	}
	n.dws[d].BeginEntry()
}

// emitDoorway publishes a doorway position change (cross or exit) as a
// typed event.
func (n *Node) emitDoorway(d dwIndex, cross bool) {
	if n.emit == nil || !n.wants(trace.KindDoorway) {
		return
	}
	action := "exit"
	if cross {
		action = "cross"
	}
	n.emit(trace.Event{Kind: trace.KindDoorway, Peer: trace.NoNode, New: action, Detail: d.String()})
}

// tracef publishes a free-form protocol diagnostic on the trace bus.
func (n *Node) tracef(format string, args ...any) {
	if n.emit == nil || !n.wants(trace.KindNote) {
		return
	}
	n.emit(trace.Event{Kind: trace.KindNote, Peer: trace.NoNode, Detail: fmt.Sprintf(format, args...)})
}
