package lme1

import (
	"testing"

	"lme/internal/coloring"
	"lme/internal/core"
	"lme/internal/doorway"
	"lme/internal/sim"
)

// fakeEnv drives a Node directly, recording everything it sends — the
// white-box harness for the recolouring module's corner cases.
type fakeEnv struct {
	id        core.NodeID
	neighbors []core.NodeID
	now       sim.Time
	moving    bool
	state     core.State

	sent []sent
}

type sent struct {
	to  core.NodeID
	msg core.Message
}

var _ core.Env = (*fakeEnv)(nil)

func (e *fakeEnv) ID() core.NodeID          { return e.id }
func (e *fakeEnv) Now() sim.Time            { return e.now }
func (e *fakeEnv) Neighbors() []core.NodeID { return append([]core.NodeID(nil), e.neighbors...) }
func (e *fakeEnv) Moving() bool             { return e.moving }
func (e *fakeEnv) SetState(s core.State)    { e.state = s }
func (e *fakeEnv) Send(to core.NodeID, m core.Message) {
	e.sent = append(e.sent, sent{to: to, msg: m})
}
func (e *fakeEnv) Broadcast(m core.Message) {
	for _, j := range e.neighbors {
		e.Send(j, m)
	}
}

// sentOfType filters the recorded messages by example type.
func (e *fakeEnv) count(match func(core.Message) bool) int {
	n := 0
	for _, s := range e.sent {
		if match(s.msg) {
			n++
		}
	}
	return n
}

// newRecoloringNode builds a node that has crossed AD^r and SD^r and just
// started the recolouring procedure.
func newRecoloringNode(t *testing.T, cfg Config, id core.NodeID, neighbors ...core.NodeID) (*Node, *fakeEnv) {
	t.Helper()
	env := &fakeEnv{id: id, neighbors: neighbors}
	n := New(cfg)
	n.Init(env)
	n.needsRecolor = true
	n.setState(core.Hungry)
	// Drive the doorway pipeline by observing every neighbour outside:
	// with all outside, BecomeHungry's AD^r entry crosses immediately,
	// and SD^r likewise, landing in startRecolor.
	n.startJourney()
	if !n.rec.active && cfg.Variant != VariantLinial {
		t.Fatal("recolouring did not start")
	}
	return n, env
}

func TestRecolorAloneFinishesImmediately(t *testing.T) {
	env := &fakeEnv{id: 5}
	n := New(Config{Variant: VariantGreedy})
	n.Init(env)
	n.needsRecolor = true
	n.setState(core.Hungry)
	n.startJourney()
	if n.rec.active {
		t.Fatal("recolouring still active with no neighbours")
	}
	if n.Color() != -1 {
		t.Fatalf("colour = %d, want -1 (ret 0 negated)", n.Color())
	}
	// With no neighbours the whole pipeline collapses and the node eats.
	if n.State() != core.Eating {
		t.Fatalf("state = %v, want eating", n.State())
	}
}

func TestRecolorNACKRemovesParticipant(t *testing.T) {
	n, env := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2)
	if got := env.count(func(m core.Message) bool { _, ok := m.(msgGraph); return ok }); got != 1 {
		t.Fatalf("sent %d graph messages, want 1", got)
	}
	n.OnMessage(2, msgNACK{})
	if n.rec.active {
		t.Fatal("recolouring still active after sole participant NACKed")
	}
	if n.Color() != -1 {
		t.Fatalf("colour = %d, want -1", n.Color())
	}
}

func TestRecolorGreedyTwoParty(t *testing.T) {
	n, env := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2)
	// Iteration 1: the neighbour's empty graph arrives.
	n.OnMessage(2, msgGraph{})
	if !n.rec.active {
		t.Fatal("finished after one iteration despite graph growth")
	}
	// Iteration 2: the neighbour now reports the shared edge; our graph
	// stops changing, so we finish, announce with Finished=true and
	// colour ourselves.
	n.OnMessage(2, msgGraph{Edges: coloringEdge(1, 2)})
	if n.rec.active {
		t.Fatal("not finished after stable iteration")
	}
	finals := env.count(func(m core.Message) bool {
		gm, ok := m.(msgGraph)
		return ok && gm.Finished
	})
	if finals != 1 {
		t.Fatalf("sent %d finished-graphs, want 1", finals)
	}
	// Deterministic greedy colouring of edge (1,2): node 1 gets 0.
	if n.Color() != -1 {
		t.Fatalf("colour = %d, want -1 (greedy colour 0 negated)", n.Color())
	}
	// An update-color broadcast must follow.
	if env.count(func(m core.Message) bool { _, ok := m.(msgUpdateColor); return ok }) == 0 {
		t.Fatal("no update-color broadcast after recolouring")
	}
}

func TestRecolorGreedyFinishedFlagShortCircuits(t *testing.T) {
	n, _ := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2)
	// The neighbour's first message already says Finished: we merge and
	// stop this iteration.
	n.OnMessage(2, msgGraph{Edges: coloringEdge(1, 2), Finished: true})
	if n.rec.active {
		t.Fatal("did not finish on neighbour's Finished flag")
	}
}

func TestRecolorNeighborLossCompletesIteration(t *testing.T) {
	n, _ := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2, 3)
	// Neighbour 2 responds, 3 moves away: the iteration must complete
	// with R = {2}.
	n.OnMessage(2, msgGraph{})
	if !n.rec.active {
		t.Fatal("iteration completed too early")
	}
	n.OnLinkDown(3)
	if !n.rec.active {
		t.Fatal("should continue with the remaining participant")
	}
	n.OnMessage(2, msgGraph{Edges: coloringEdge(1, 2)})
	if n.rec.active {
		t.Fatal("did not finish")
	}
}

func TestRecolorAbortOnMove(t *testing.T) {
	n, env := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2)
	env.moving = true
	n.OnLinkUp(9, true)
	if n.rec.active {
		t.Fatal("recolouring survived the move")
	}
	if !n.NeedsRecolor() {
		t.Fatal("needsRecolor cleared by the move")
	}
	if n.ph != phAwaitStatus {
		t.Fatalf("phase = %d, want await-status", n.ph)
	}
	// The pending status arrives: the journey restarts at AD^r.
	n.OnMessage(9, msgStatus{Color: 7})
	if n.ph != phEnterADr && n.ph != phEnterSDr && n.ph != phRecolor {
		t.Fatalf("phase = %d, want back in the recolouring pipeline", n.ph)
	}
}

func TestRecolorMsgWhileInactiveDrawsNACK(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{2}}
	n := New(Config{Variant: VariantGreedy})
	n.Init(env)
	n.OnMessage(2, msgGraph{})
	nacks := env.count(func(m core.Message) bool { _, ok := m.(msgNACK); return ok })
	if nacks != 1 {
		t.Fatalf("sent %d NACKs, want 1", nacks)
	}
	// A temp-colour message draws one too.
	n.OnMessage(2, msgTempColor{})
	if got := env.count(func(m core.Message) bool { _, ok := m.(msgNACK); return ok }); got != 2 {
		t.Fatalf("sent %d NACKs, want 2", got)
	}
	// A stray NACK while inactive is ignored.
	n.OnMessage(2, msgNACK{})
}

func TestRecolorLinialPhases(t *testing.T) {
	cfg := Config{Variant: VariantLinial, N: 64, Delta: 2}
	n, env := newRecoloringNode(t, cfg, 1, 2)
	if !n.rec.active {
		t.Fatal("linial recolouring did not start")
	}
	phases := len(n.rec.sched)
	if phases == 0 {
		t.Fatal("empty schedule for n=64 δ=2")
	}
	// Feed the neighbour's temp colour for each phase; it keeps its ID.
	for ph := 0; ph < phases; ph++ {
		if !n.rec.active {
			t.Fatalf("finished early at phase %d", ph)
		}
		n.OnMessage(2, msgTempColor{Phase: ph, Color: 2})
	}
	if n.rec.active {
		t.Fatal("did not finish after all phases")
	}
	if n.Color() >= 0 {
		t.Fatalf("colour = %d, want negative", n.Color())
	}
	tcs := env.count(func(m core.Message) bool { _, ok := m.(msgTempColor); return ok })
	if tcs != phases {
		t.Fatalf("sent %d temp-colours, want %d", tcs, phases)
	}
}

func TestRecolorFirstConfig(t *testing.T) {
	env := &fakeEnv{id: 3, neighbors: []core.NodeID{4}}
	n := New(Config{Variant: VariantGreedy, RecolorFirst: true})
	n.Init(env)
	if !n.NeedsRecolor() {
		t.Fatal("RecolorFirst did not arm the recolouring module")
	}
}

func TestSmallestFreeColor(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{2, 3, 4}}
	n := New(Config{})
	n.Init(env)
	n.colors[2], n.colors[3], n.colors[4] = 0, 1, 3
	if got := n.smallestFreeColor(); got != 2 {
		t.Fatalf("smallestFreeColor = %d, want 2", got)
	}
	delete(n.colors, 2)
	if got := n.smallestFreeColor(); got != 0 {
		t.Fatalf("smallestFreeColor = %d, want 0", got)
	}
}

func TestReqWithUnknownColorSuspends(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{2}}
	n := New(Config{})
	n.Init(env)
	delete(n.colors, 2) // simulate an uncoloured newcomer holding a request
	n.at[2] = true
	n.OnMessage(2, msgReq{})
	if !n.suspended[2] {
		t.Fatal("request from uncoloured neighbour not suspended")
	}
	if n.at[2] != true {
		t.Fatal("fork left despite suspension")
	}
}

func TestDebugStringSmoke(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{2}}
	n := New(Config{})
	n.Init(env)
	if n.DebugString() == "" {
		t.Fatal("empty debug string")
	}
}

// coloringEdge builds the one-edge slice used by the graph messages.
func coloringEdge(a, b core.NodeID) []coloring.Edge {
	return []coloring.Edge{coloring.NewEdge(a, b)}
}

// The doorway positions carried in status messages default to Outside.
func TestStatusMessageDefaults(t *testing.T) {
	var m msgStatus
	for d := dwIndex(0); d < numDoorways; d++ {
		if m.Pos[d] == doorway.Behind {
			t.Fatal("zero status claims behind")
		}
	}
}

// pump routes every message sent by any of the nodes to its target until
// quiescence, preserving per-sender FIFO order — a miniature synchronous
// network for multi-party white-box tests.
func pump(t *testing.T, envs map[core.NodeID]*fakeEnv, nodes map[core.NodeID]*Node) {
	t.Helper()
	consumed := make(map[core.NodeID]int)
	for rounds := 0; rounds < 10_000; rounds++ {
		progressed := false
		for from, env := range envs {
			for consumed[from] < len(env.sent) {
				s := env.sent[consumed[from]]
				consumed[from]++
				progressed = true
				if dst, ok := nodes[s.to]; ok {
					dst.OnMessage(from, s.msg)
				}
			}
		}
		if !progressed {
			return
		}
	}
	t.Fatal("message pump did not quiesce")
}

// TestRecolorLinialReduceThreeParty runs the colour-reduction variant on a
// 3-clique of concurrent recolourers end to end: everyone must finish with
// distinct colours inside the reduced palette [-(δ+1), -1].
func TestRecolorLinialReduceThreeParty(t *testing.T) {
	const delta = 2
	cfg := Config{Variant: VariantLinialReduce, N: 64, Delta: delta}
	ids := []core.NodeID{1, 2, 3}
	envs := make(map[core.NodeID]*fakeEnv, len(ids))
	nodes := make(map[core.NodeID]*Node, len(ids))
	for _, id := range ids {
		var nbrs []core.NodeID
		for _, j := range ids {
			if j != id {
				nbrs = append(nbrs, j)
			}
		}
		envs[id] = &fakeEnv{id: id, neighbors: nbrs}
		n := New(cfg)
		n.Init(envs[id])
		n.needsRecolor = true
		n.setState(core.Hungry)
		nodes[id] = n
	}
	for _, id := range ids {
		nodes[id].startJourney()
	}
	pump(t, envs, nodes)
	seen := make(map[int]core.NodeID)
	for _, id := range ids {
		n := nodes[id]
		if n.rec.active {
			t.Fatalf("node %d never finished recolouring", id)
		}
		c := n.Color()
		if c < -(delta+1) || c > -1 {
			t.Fatalf("node %d colour %d outside reduced palette [-(δ+1), -1]", id, c)
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("nodes %d and %d share colour %d", prev, id, c)
		}
		seen[c] = id
	}
}

// TestRecolorLinialThreePartyPaletteWider: the plain Linial variant on the
// same clique finishes with legal colours but in the wider O(δ²) palette —
// the contrast the reduction variant exists for.
func TestRecolorLinialThreePartyPaletteWider(t *testing.T) {
	const delta = 2
	cfg := Config{Variant: VariantLinial, N: 64, Delta: delta}
	ids := []core.NodeID{1, 2, 3}
	envs := make(map[core.NodeID]*fakeEnv, len(ids))
	nodes := make(map[core.NodeID]*Node, len(ids))
	for _, id := range ids {
		var nbrs []core.NodeID
		for _, j := range ids {
			if j != id {
				nbrs = append(nbrs, j)
			}
		}
		envs[id] = &fakeEnv{id: id, neighbors: nbrs}
		n := New(cfg)
		n.Init(envs[id])
		n.needsRecolor = true
		n.setState(core.Hungry)
		nodes[id] = n
	}
	for _, id := range ids {
		nodes[id].startJourney()
	}
	pump(t, envs, nodes)
	seen := make(map[int]bool)
	for _, id := range ids {
		c := nodes[id].Color()
		if c >= 0 {
			t.Fatalf("node %d colour %d not negative", id, c)
		}
		if seen[c] {
			t.Fatalf("duplicate colour %d", c)
		}
		seen[c] = true
	}
}

// TestRecolorMixedTypeDropsParticipant: a participant that answers a
// greedy iteration with the wrong procedure's message is dropped from R
// rather than wedging the iteration.
func TestRecolorMixedTypeDropsParticipant(t *testing.T) {
	n, _ := newRecoloringNode(t, Config{Variant: VariantGreedy}, 1, 2, 3)
	n.OnMessage(2, msgGraph{})
	n.OnMessage(3, msgTempColor{Color: 9}) // wrong procedure
	// The iteration consumed both: 3 dropped, the loop continues with 2.
	if !n.rec.active {
		t.Fatal("finished prematurely")
	}
	if n.rec.r[3] {
		t.Fatal("mismatched participant still in R")
	}
	n.OnMessage(2, msgGraph{Edges: coloringEdge(1, 2)})
	if n.rec.active {
		t.Fatal("did not finish")
	}
}

// TestRecolorLinialMixedTypeDropsParticipant: same for the fast procedure.
func TestRecolorLinialMixedTypeDropsParticipant(t *testing.T) {
	cfg := Config{Variant: VariantLinial, N: 64, Delta: 2}
	n, _ := newRecoloringNode(t, cfg, 1, 2, 3)
	phases := len(n.rec.sched)
	n.OnMessage(2, msgTempColor{Phase: 0, Color: 2})
	n.OnMessage(3, msgGraph{}) // wrong procedure
	if n.rec.r[3] {
		t.Fatal("mismatched participant still in R")
	}
	for ph := 1; ph < phases && n.rec.active; ph++ {
		n.OnMessage(2, msgTempColor{Phase: ph, Color: 2})
	}
	if n.rec.active {
		t.Fatal("did not finish")
	}
	if n.Color() >= 0 {
		t.Fatalf("colour = %d", n.Color())
	}
}
