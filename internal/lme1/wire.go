package lme1

import "encoding/gob"

// The live runtime's UDP transport moves protocol messages as gob-encoded
// interface payloads; registering the concrete types here keeps the
// algorithm core free of any runtime import (the transport never names
// these types, and this package never names the transport).
func init() {
	gob.Register(msgDoorway{})
	gob.Register(msgUpdateColor{})
	gob.Register(msgStatus{})
	gob.Register(msgReq{})
	gob.Register(msgFork{})
	gob.Register(msgNACK{})
	gob.Register(msgGraph{})
	gob.Register(msgTempColor{})
}
