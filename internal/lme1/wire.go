package lme1

import (
	"encoding/gob"
	"math/rand/v2"

	"lme/internal/coloring"
	"lme/internal/core"
	"lme/internal/doorway"
	"lme/internal/wire"
)

// The live runtime's UDP transport moves protocol messages as explicit
// binary codecs registered here (type IDs 0x0101–0x0108; see
// internal/wire). Registration keeps the algorithm core free of any
// runtime import: the transport never names these types, and this
// package never names the transport. gob registration is retained for
// the differential-test oracle and the transport's -wire gob mode.
func init() {
	gob.Register(msgDoorway{})
	gob.Register(msgUpdateColor{})
	gob.Register(msgStatus{})
	gob.Register(msgReq{})
	gob.Register(msgFork{})
	gob.Register(msgNACK{})
	gob.Register(msgGraph{})
	gob.Register(msgTempColor{})

	wire.Register(wire.Codec{
		ID: 0x0101, Name: "lme1.doorway", Proto: msgDoorway{},
		Append: func(b []byte, m core.Message) []byte {
			v := m.(msgDoorway)
			b = wire.AppendUvarint(b, uint64(v.D))
			return wire.AppendBool(b, v.Cross)
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgDoorway{D: dwIndex(r.Uvarint()), Cross: r.Bool()}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return msgDoorway{D: dwIndex(rng.IntN(int(numDoorways))), Cross: rng.IntN(2) == 0}
		},
	})
	wire.Register(wire.Codec{
		ID: 0x0102, Name: "lme1.update_color", Proto: msgUpdateColor{},
		Append: func(b []byte, m core.Message) []byte {
			return wire.AppendVarint(b, int64(m.(msgUpdateColor).Color))
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgUpdateColor{Color: int(r.Varint())}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return msgUpdateColor{Color: rng.IntN(64)}
		},
	})
	wire.Register(wire.Codec{
		ID: 0x0103, Name: "lme1.status", Proto: msgStatus{},
		Append: func(b []byte, m core.Message) []byte {
			v := m.(msgStatus)
			b = wire.AppendVarint(b, int64(v.Color))
			for _, p := range v.Pos {
				b = wire.AppendUvarint(b, uint64(p))
			}
			return b
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgStatus{Color: int(r.Varint())}
			for d := range v.Pos {
				v.Pos[d] = doorway.Pos(r.Uvarint())
			}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			v := msgStatus{Color: rng.IntN(64)}
			for d := range v.Pos {
				v.Pos[d] = doorway.Pos(1 + rng.IntN(2))
			}
			return v
		},
	})
	wire.Register(wire.Codec{
		ID: 0x0104, Name: "lme1.req", Proto: msgReq{},
		Append: func(b []byte, _ core.Message) []byte { return b },
		Decode: func(b []byte) (core.Message, error) {
			return msgReq{}, wire.NewReader(b).Done()
		},
		Sample: func(*rand.Rand) core.Message { return msgReq{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0105, Name: "lme1.fork", Proto: msgFork{},
		Append: func(b []byte, m core.Message) []byte {
			return wire.AppendBool(b, m.(msgFork).Flag)
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgFork{Flag: r.Bool()}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return msgFork{Flag: rng.IntN(2) == 0}
		},
	})
	wire.Register(wire.Codec{
		ID: 0x0106, Name: "lme1.nack", Proto: msgNACK{},
		Append: func(b []byte, _ core.Message) []byte { return b },
		Decode: func(b []byte) (core.Message, error) {
			return msgNACK{}, wire.NewReader(b).Done()
		},
		Sample: func(*rand.Rand) core.Message { return msgNACK{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0107, Name: "lme1.graph", Proto: msgGraph{},
		Append: func(b []byte, m core.Message) []byte {
			v := m.(msgGraph)
			b = wire.AppendUvarint(b, uint64(len(v.Edges)))
			for _, e := range v.Edges {
				b = wire.AppendVarint(b, int64(e.A))
				b = wire.AppendVarint(b, int64(e.B))
			}
			return wire.AppendBool(b, v.Finished)
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			n := r.Uvarint()
			v := msgGraph{}
			if n > 0 && n <= uint64(len(b)) {
				// A zero count decodes to a nil slice, matching the gob
				// oracle's round trip of the empty value. The length guard
				// rejects corrupt counts before allocating.
				v.Edges = make([]coloring.Edge, n)
				for i := range v.Edges {
					v.Edges[i].A = core.NodeID(r.Varint())
					v.Edges[i].B = core.NodeID(r.Varint())
				}
			}
			v.Finished = r.Bool()
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			v := msgGraph{Finished: rng.IntN(2) == 0}
			if n := rng.IntN(6); n > 0 {
				v.Edges = make([]coloring.Edge, n)
				for i := range v.Edges {
					a, bb := core.NodeID(rng.IntN(100)), core.NodeID(100+rng.IntN(100))
					v.Edges[i] = coloring.NewEdge(a, bb)
				}
			}
			return v
		},
	})
	wire.Register(wire.Codec{
		ID: 0x0108, Name: "lme1.temp_color", Proto: msgTempColor{},
		Append: func(b []byte, m core.Message) []byte {
			v := m.(msgTempColor)
			b = wire.AppendVarint(b, int64(v.Phase))
			return wire.AppendVarint(b, int64(v.Color))
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgTempColor{Phase: int(r.Varint()), Color: int(r.Varint())}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return msgTempColor{Phase: rng.IntN(10), Color: rng.IntN(64)}
		},
	})
}
