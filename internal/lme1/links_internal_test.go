package lme1

import (
	"testing"

	"lme/internal/core"
	"lme/internal/doorway"
)

// TestLinkUpStaticSendsStatus: the static side of a new link owns the
// fork, clears the newcomer's colour and replies with its colour and
// doorway positions (Line 46).
func TestLinkUpStaticSendsStatus(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{0}}
	n := New(Config{})
	n.Init(env)
	n.OnLinkUp(7, false)
	if !n.at[7] {
		t.Fatal("static side does not own the new fork")
	}
	if _, known := n.colors[7]; known {
		t.Fatal("newcomer's colour not cleared to ⊥")
	}
	var status *msgStatus
	for _, s := range env.sent {
		if m, ok := s.msg.(msgStatus); ok && s.to == 7 {
			status = &m
		}
	}
	if status == nil {
		t.Fatal("no status message sent to the newcomer")
	}
	if status.Color != n.myColor {
		t.Fatalf("status colour %d, want %d", status.Color, n.myColor)
	}
}

// TestLinkUpStaticReportsDoorwayPositions: a static node behind its fork
// doorways reports Behind in the status message.
func TestLinkUpStaticReportsDoorwayPositions(t *testing.T) {
	env := &fakeEnv{id: 1}
	n := New(Config{})
	n.Init(env)
	n.BecomeHungry() // no neighbours: sails behind AD^f and SD^f, eats
	if n.State() != core.Eating {
		t.Fatalf("state = %v", n.State())
	}
	n.OnLinkUp(7, false)
	var status *msgStatus
	for _, s := range env.sent {
		if m, ok := s.msg.(msgStatus); ok {
			status = &m
		}
	}
	if status == nil {
		t.Fatal("no status sent")
	}
	if status.Pos[adf] != doorway.Behind || status.Pos[sdf] != doorway.Behind {
		t.Fatalf("status positions %v, want behind fork doorways", status.Pos)
	}
	if status.Pos[adr] != doorway.Outside || status.Pos[sdr] != doorway.Outside {
		t.Fatalf("status positions %v, want outside recolour doorways", status.Pos)
	}
}

// TestMoverWaitsForAllStatuses: a hungry mover gaining two links must not
// restart its journey until both status messages arrived (Line 53).
func TestMoverWaitsForAllStatuses(t *testing.T) {
	env := &fakeEnv{id: 5, neighbors: []core.NodeID{1}}
	n := New(Config{})
	n.Init(env)
	n.BecomeHungry()
	env.moving = true
	n.OnLinkUp(8, true)
	n.OnLinkUp(9, true)
	if n.ph != phAwaitStatus {
		t.Fatalf("phase = %d, want await-status", n.ph)
	}
	n.OnMessage(8, msgStatus{Color: 3})
	if n.ph != phAwaitStatus {
		t.Fatal("restarted with one status still missing")
	}
	n.OnMessage(9, msgStatus{Color: 4})
	if n.ph == phAwaitStatus || n.ph == phIdle {
		t.Fatalf("phase = %d, want journey restarted", n.ph)
	}
	if !n.needsRecolor && !n.rec.active && n.Color() >= 0 {
		t.Fatal("mover skipped recolouring")
	}
	if n.colors[8] != 3 || n.colors[9] != 4 {
		t.Fatal("status colours not recorded")
	}
}

// TestMoverStatusDrainViaLinkDown: if an awaited neighbour departs before
// its status arrives, the wait must drain through the LinkDown cleanup.
func TestMoverStatusDrainViaLinkDown(t *testing.T) {
	env := &fakeEnv{id: 5, neighbors: []core.NodeID{1}}
	n := New(Config{})
	n.Init(env)
	n.BecomeHungry()
	env.moving = true
	n.OnLinkUp(8, true)
	if n.ph != phAwaitStatus {
		t.Fatalf("phase = %d", n.ph)
	}
	n.OnLinkDown(8)
	if n.ph == phAwaitStatus {
		t.Fatal("stuck awaiting a departed neighbour's status")
	}
}

// TestReturnPathUnit drives Lines 59–60 directly: a low neighbour departs
// holding the shared fork while this node is behind SD^f; the node must
// exit the synchronous doorway, serve its suspended requests, and re-enter.
func TestReturnPathUnit(t *testing.T) {
	colors := map[core.NodeID]int{1: 2, 0: 1, 2: 3}
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{0, 2}}
	n := New(Config{InitialColor: func(id core.NodeID) int { return colors[id] }})
	n.Init(env)
	// Arrange: hungry behind SD^f, low neighbour 0 (colour 1 < 2) holds
	// the shared fork, high neighbour 2's request suspended.
	n.BecomeHungry()
	if !n.dws[sdf].Behind() {
		t.Fatalf("not behind SD^f (ph=%d)", n.ph)
	}
	n.at[0] = false
	n.at[2] = true
	n.suspended[2] = true
	forksBefore := env.count(func(m core.Message) bool { _, ok := m.(msgFork); return ok })
	n.OnLinkDown(0)
	if got := env.count(func(m core.Message) bool { _, ok := m.(msgFork); return ok }); got != forksBefore+1 {
		t.Fatalf("suspended request not served on the return path (forks %d → %d)", forksBefore, got)
	}
	// The node exited SD^f and immediately re-entered (it may have
	// crossed again at once since 2 is observed outside).
	if !n.dws[sdf].Behind() && !n.dws[sdf].Entering() {
		t.Fatal("not back at/behind the synchronous doorway")
	}
	// The wire saw an exit followed by a cross for SD^f (observe one
	// recipient; the fake env broadcasts to its static neighbour list).
	var sdfMsgs []bool
	for _, s := range env.sent {
		if m, ok := s.msg.(msgDoorway); ok && m.D == sdf && s.to == 2 {
			sdfMsgs = append(sdfMsgs, m.Cross)
		}
	}
	if len(sdfMsgs) < 3 || sdfMsgs[len(sdfMsgs)-2] != false || sdfMsgs[len(sdfMsgs)-1] != true {
		t.Fatalf("SD^f announcements = %v, want ... exit, cross", sdfMsgs)
	}
}

// TestHighNeighborDepartureUnblocks: losing the crashed-or-departed HIGH
// neighbour that held the last missing fork lets the node eat (the §5.1
// progress property, no return path involved).
func TestHighNeighborDepartureUnblocks(t *testing.T) {
	colors := map[core.NodeID]int{1: 2, 2: 5}
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{2}}
	n := New(Config{InitialColor: func(id core.NodeID) int { return colors[id] }})
	n.Init(env)
	n.BecomeHungry()
	n.at[2] = false // high neighbour holds the fork
	if n.State() == core.Eating {
		t.Skip("ate before arrangement") // cannot happen: at[2]=false set after
	}
	n.OnLinkDown(2)
	if n.State() != core.Eating {
		t.Fatalf("state = %v after the blocking high neighbour left", n.State())
	}
}

// TestEaterSuspendsRequestsEvenAtEntry is the erratum-3 regression at the
// unit level: a node that ate while only entering SD^f must suspend
// incoming requests exactly like a normal eater.
func TestEaterSuspendsRequestsEvenAtEntry(t *testing.T) {
	colors := map[core.NodeID]int{1: 2, 0: 1}
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{0}}
	n := New(Config{InitialColor: func(id core.NodeID) int { return colors[id] }})
	n.Init(env)
	// Block the SD^f entry by observing the neighbour behind it, then
	// make the node hungry and hand it the last fork while it waits.
	n.dws[sdf].Observe(0, doorway.Behind)
	n.BecomeHungry()
	if n.dws[sdf].Behind() {
		t.Fatal("setup: crossed SD^f despite behind neighbour")
	}
	n.at[0] = false
	n.OnMessage(0, msgFork{})
	if n.State() != core.Eating {
		t.Fatalf("state = %v, want eating at the doorway entry (Line 19)", n.State())
	}
	// A request arriving now must be suspended, not granted.
	n.OnMessage(0, msgReq{})
	if !n.suspended[0] {
		t.Fatal("eater at the doorway entry granted a fork mid-CS")
	}
	// And the mover demotion applies to it too.
	env.moving = true
	n.OnLinkUp(9, true)
	if n.State() != core.Hungry {
		t.Fatalf("state = %v, want demoted to hungry", n.State())
	}
}
