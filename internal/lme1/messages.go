package lme1

import (
	"lme/internal/coloring"
	"lme/internal/doorway"
)

// dwIndex identifies one of the four doorway instances of Figure 5.
type dwIndex int

const (
	adr dwIndex = iota // asynchronous doorway of the recolouring module
	sdr                // synchronous doorway of the recolouring module
	adf                // asynchronous doorway of the fork-collection module
	sdf                // synchronous doorway of the fork-collection module
	numDoorways
)

func (d dwIndex) String() string {
	switch d {
	case adr:
		return "AD^r"
	case sdr:
		return "SD^r"
	case adf:
		return "AD^f"
	case sdf:
		return "SD^f"
	default:
		return "?"
	}
}

// msgDoorway announces a position change relative to one doorway (the
// cross/exit broadcasts of Figure 2).
type msgDoorway struct {
	D     dwIndex
	Cross bool
}

// msgUpdateColor carries a node's freshly chosen colour (Lines 7 and 39).
type msgUpdateColor struct {
	Color int
}

// msgStatus is the static node's reply to a newly arrived neighbour
// (Line 46): its colour together with its logical position relative to
// every doorway, so the newcomer can rebuild its L[] entries.
type msgStatus struct {
	Color int
	Pos   [numDoorways]doorway.Pos
}

// msgReq requests the shared fork (Lines 24–29).
type msgReq struct{}

// msgFork transfers the shared fork; Flag set means the sender wants the
// fork back (Line 31).
type msgFork struct {
	Flag bool
}

// msgNACK tells a recolouring node that the sender is not participating
// (Lines 40–43 of the wrapper).
type msgNACK struct{}

// msgGraph is one iteration of the greedy colouring procedure (Algorithm
// 4): the sender's conflict graph so far, with Finished marking its final
// transmission (Line 71).
type msgGraph struct {
	Edges    []coloring.Edge
	Finished bool
}

// msgTempColor is one iteration of the fast colouring procedure (Algorithm
// 5): the sender's temporary colour for the given phase.
type msgTempColor struct {
	Phase int
	Color int
}
