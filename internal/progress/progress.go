// Package progress emits live run telemetry: a heartbeat that samples
// the run's vital signs — events/sec, sim-time rate, open spans, heap
// bytes, trace-loss counters — on a wall-clock interval and writes a
// human one-liner and/or a machine-readable JSONL stream (schema
// lme/progress/v1). Nothing here touches virtual time: a multi-minute
// 100k-node run reports the same numbers whether or not anyone watches,
// and the per-tick cost is one ReadMemStats plus a few atomic loads.
//
// The Reporter is driven by its owner (the harness ticks it at
// slice boundaries; lmebench ticks it from a wall-clock ticker
// goroutine) and is single-goroutine: whoever ticks it owns it.
package progress

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"lme/internal/sim"
	"lme/internal/telemetry"
)

// Schema identifies the JSONL record layout; bump on breaking changes.
const Schema = "lme/progress/v1"

// Record is one heartbeat sample (one JSONL line). Rates are measured
// over the interval since the previous record.
type Record struct {
	Schema string `json:"schema"`
	// Label names the run or experiment being reported, when the owner
	// set one.
	Label string `json:"label,omitempty"`
	// WallMS is wall-clock time since the reporter started.
	WallMS float64 `json:"wall_ms"`
	// SimUS is the current virtual time (0 when the source is absent,
	// e.g. fleet-level reporting).
	SimUS int64 `json:"sim_us"`
	// Events is the cumulative scheduler event count.
	Events uint64 `json:"events"`
	// EventsPerSec and SimUSPerSec are rates over the last interval:
	// scheduler events per wall second, and virtual µs advanced per wall
	// second (SimUSPerSec/1e6 = real-time speedup factor).
	EventsPerSec float64 `json:"events_per_sec"`
	SimUSPerSec  float64 `json:"sim_us_per_sec"`
	// OpenSpans is the number of CS attempts currently in progress.
	OpenSpans int `json:"open_spans"`
	// HeapBytes is runtime.MemStats.HeapAlloc at sample time.
	HeapBytes uint64 `json:"heap_bytes"`
	// RingOverwritten/SinkDropped are the trace-loss counters: events
	// overwritten in the flight-recorder ring and events dropped by a
	// saturated sink.
	RingOverwritten uint64 `json:"ring_overwritten"`
	SinkDropped     uint64 `json:"sink_dropped"`
	// JobsDone/JobsTotal report fleet progress when the owner supplies a
	// jobs source (JobsTotal may be 0 when unknown).
	JobsDone  int `json:"jobs_done,omitempty"`
	JobsTotal int `json:"jobs_total,omitempty"`
	// Engine and Transport are the optional lme/telemetry/v1 sections:
	// the sharded engine's per-tile/window counters and a live
	// transport's wire counters. Absent (nil) when the run collects no
	// telemetry — old lme/progress/v1 records simply lack the keys, and
	// readers must tolerate that.
	Engine    *telemetry.EngineStats    `json:"engine,omitempty"`
	Transport *telemetry.TransportStats `json:"transport,omitempty"`
	// Final marks the closing record emitted after the run completes.
	Final bool `json:"final,omitempty"`
}

// Sources are the gauges the reporter samples. Every field is optional;
// a nil source reads as zero.
type Sources struct {
	// Now reports current virtual time.
	Now func() sim.Time
	// Events reports the cumulative scheduler event count.
	Events func() uint64
	// OpenSpans reports the number of open CS attempts.
	OpenSpans func() int
	// Loss reports the cumulative trace-loss counters
	// (ring-overwritten, sink-dropped).
	Loss func() (overwritten, dropped uint64)
	// Jobs reports fleet progress (done, total); total 0 = unknown.
	Jobs func() (done, total int)
	// Engine snapshots the execution engine's telemetry (nil result =
	// section omitted). Sampled at tick time, on the ticking goroutine —
	// the source must be safe to call there.
	Engine func() *telemetry.EngineStats
	// Transport snapshots a live transport's wire telemetry (nil result
	// = section omitted).
	Transport func() *telemetry.TransportStats
}

// Config configures a Reporter.
type Config struct {
	// Interval is the minimum wall-clock spacing between heartbeats
	// (default 2s).
	Interval time.Duration
	// Human receives the one-line rendering of each record (typically
	// os.Stderr); nil disables it.
	Human io.Writer
	// JSONL receives one lme/progress/v1 record per line; nil disables.
	JSONL io.Writer
	// Label names the run in every record.
	Label string
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// Reporter samples the sources on demand, rate-limited by the interval.
type Reporter struct {
	cfg Config
	src Sources

	start    time.Time
	lastEmit time.Time
	lastEv   uint64
	lastSim  sim.Time

	err error
}

// New creates a reporter; the interval clock starts immediately.
func New(cfg Config, src Sources) *Reporter {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Reporter{cfg: cfg, src: src}
	r.start = cfg.Clock()
	r.lastEmit = r.start
	return r
}

// Tick emits a heartbeat if at least Interval has passed since the last
// one; otherwise it returns immediately (two time loads and a compare —
// cheap enough for a hot loop's slice boundary).
func (r *Reporter) Tick() {
	now := r.cfg.Clock()
	if now.Sub(r.lastEmit) < r.cfg.Interval {
		return
	}
	r.emit(now, false)
}

// Final emits the closing record unconditionally.
func (r *Reporter) Final() { r.emit(r.cfg.Clock(), true) }

// Err reports the first write error, if any (heartbeats are best-effort;
// a broken pipe stops hurting but is still visible here).
func (r *Reporter) Err() error { return r.err }

// Sample assembles a Record from the sources without emitting it.
func (r *Reporter) Sample(now time.Time, final bool) Record {
	rec := Record{Schema: Schema, Label: r.cfg.Label, Final: final}
	rec.WallMS = float64(now.Sub(r.start)) / float64(time.Millisecond)
	if r.src.Now != nil {
		rec.SimUS = int64(r.src.Now())
	}
	if r.src.Events != nil {
		rec.Events = r.src.Events()
	}
	if dt := now.Sub(r.lastEmit).Seconds(); dt > 0 {
		rec.EventsPerSec = float64(rec.Events-r.lastEv) / dt
		rec.SimUSPerSec = float64(sim.Time(rec.SimUS)-r.lastSim) / dt
	}
	if r.src.OpenSpans != nil {
		rec.OpenSpans = r.src.OpenSpans()
	}
	if r.src.Loss != nil {
		rec.RingOverwritten, rec.SinkDropped = r.src.Loss()
	}
	if r.src.Jobs != nil {
		rec.JobsDone, rec.JobsTotal = r.src.Jobs()
	}
	if r.src.Engine != nil {
		rec.Engine = r.src.Engine()
	}
	if r.src.Transport != nil {
		rec.Transport = r.src.Transport()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.HeapBytes = ms.HeapAlloc
	return rec
}

func (r *Reporter) emit(now time.Time, final bool) {
	rec := r.Sample(now, final)
	r.lastEmit = now
	r.lastEv = rec.Events
	r.lastSim = sim.Time(rec.SimUS)
	if w := r.cfg.Human; w != nil {
		if _, err := fmt.Fprintln(w, rec.HumanLine()); err != nil && r.err == nil {
			r.err = err
		}
	}
	if w := r.cfg.JSONL; w != nil {
		data, err := json.Marshal(rec)
		if err == nil {
			data = append(data, '\n')
			_, err = w.Write(data)
		}
		if err != nil && r.err == nil {
			r.err = err
		}
	}
}

// HumanLine renders the record as the stderr one-liner.
func (r Record) HumanLine() string {
	var b []byte
	b = append(b, "progress"...)
	if r.Label != "" {
		b = append(b, ' ')
		b = append(b, r.Label...)
	}
	if r.Final {
		b = append(b, " done"...)
	}
	b = fmt.Appendf(b, " wall=%.1fs", r.WallMS/1000)
	if r.SimUS > 0 {
		b = fmt.Appendf(b, " sim=%.2fs", float64(r.SimUS)/1e6)
	}
	if r.JobsTotal > 0 {
		b = fmt.Appendf(b, " jobs=%d/%d", r.JobsDone, r.JobsTotal)
	} else if r.JobsDone > 0 {
		b = fmt.Appendf(b, " jobs=%d", r.JobsDone)
	}
	b = fmt.Appendf(b, " %s ev/s", siCount(r.EventsPerSec))
	if r.SimUSPerSec > 0 {
		b = fmt.Appendf(b, " (×%.1f real time)", r.SimUSPerSec/1e6)
	}
	b = fmt.Appendf(b, " open=%d heap=%s", r.OpenSpans, siBytes(r.HeapBytes))
	if r.RingOverwritten > 0 || r.SinkDropped > 0 {
		b = fmt.Appendf(b, " loss=%d/%d", r.RingOverwritten, r.SinkDropped)
	}
	if e := r.Engine; e != nil && e.Tiles > 1 {
		b = fmt.Appendf(b, " tiles=%d×%d", e.Tiles, e.Tiles)
		if e.Imbalance > 0 {
			b = fmt.Appendf(b, " imb=%.2f", e.Imbalance)
		}
		if e.StealAttempts > 0 {
			b = fmt.Appendf(b, " steals=%d/%d", e.StealHits, e.StealAttempts)
		}
	}
	if ts := r.Transport; ts != nil {
		b = fmt.Appendf(b, " wire=%s/%d/%d", ts.Kind, ts.FramesSent, ts.FramesDelivered)
		if ts.Retransmits > 0 || ts.ReorderOverflow > 0 {
			b = fmt.Appendf(b, " retx=%d ovfl=%d", ts.Retransmits, ts.ReorderOverflow)
		}
	}
	return string(b)
}

// siCount renders a rate with a binary-free SI suffix ("1.25M").
func siCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// siBytes renders a byte count ("12.4MB").
func siBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fkB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
