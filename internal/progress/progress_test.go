package progress

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lme/internal/sim"
	"lme/internal/telemetry"
)

// fakeClock advances only when told, making intervals deterministic.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1000, 0)} }

func TestReporterIntervalGating(t *testing.T) {
	clock := newFakeClock()
	var out bytes.Buffer
	events := uint64(0)
	simNow := sim.Time(0)
	r := New(Config{Interval: time.Second, JSONL: &out, Clock: clock.Now}, Sources{
		Now:    func() sim.Time { return simNow },
		Events: func() uint64 { return events },
	})

	r.Tick() // 0ms since start: gated
	if out.Len() != 0 {
		t.Fatal("tick before interval emitted")
	}

	events, simNow = 5000, 2_000_000
	clock.Advance(time.Second)
	r.Tick()
	clock.Advance(200 * time.Millisecond)
	r.Tick() // gated again
	lines := strings.Count(out.String(), "\n")
	if lines != 1 {
		t.Fatalf("emitted %d records, want 1", lines)
	}

	var rec Record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Events != 5000 || rec.SimUS != 2_000_000 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.EventsPerSec != 5000 {
		t.Fatalf("events/sec = %v, want 5000 over the 1s interval", rec.EventsPerSec)
	}
	if rec.SimUSPerSec != 2e6 {
		t.Fatalf("sim rate = %v", rec.SimUSPerSec)
	}
	if rec.HeapBytes == 0 {
		t.Fatal("heap gauge not sampled")
	}
	if rec.Final {
		t.Fatal("heartbeat marked final")
	}

	events = 8000
	clock.Advance(300 * time.Millisecond)
	r.Final() // unconditional
	scan := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	var last Record
	for scan.Scan() {
		last = Record{}
		if err := json.Unmarshal(scan.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if !last.Final || last.Events != 8000 {
		t.Fatalf("final record = %+v", last)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestReporterHumanLine(t *testing.T) {
	clock := newFakeClock()
	var human bytes.Buffer
	r := New(Config{Interval: time.Second, Human: &human, Label: "E1", Clock: clock.Now}, Sources{
		Events: func() uint64 { return 1_250_000 },
		Loss:   func() (uint64, uint64) { return 3, 0 },
		Jobs:   func() (int, int) { return 4, 10 },
	})
	clock.Advance(time.Second)
	r.Tick()
	line := human.String()
	for _, want := range []string{"progress E1", "jobs=4/10", "ev/s", "heap=", "loss=3/0"} {
		if !strings.Contains(line, want) {
			t.Errorf("human line %q missing %q", line, want)
		}
	}
	// Loss stays silent when zero.
	var h2 bytes.Buffer
	r2 := New(Config{Interval: time.Second, Human: &h2, Clock: clock.Now}, Sources{})
	clock.Advance(time.Second)
	r2.Tick()
	if strings.Contains(h2.String(), "loss=") {
		t.Errorf("zero loss rendered: %q", h2.String())
	}
}

// recordWire pins the lme/progress/v1 field set, mirroring the
// hand-pinned wire-struct pattern of internal/span/schema_test.go.
// Pointer-free: absent omitempty fields decode as zero.
type recordWire struct {
	Schema          string  `json:"schema"`
	Label           string  `json:"label"`
	WallMS          float64 `json:"wall_ms"`
	SimUS           int64   `json:"sim_us"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	SimUSPerSec     float64 `json:"sim_us_per_sec"`
	OpenSpans       int     `json:"open_spans"`
	HeapBytes       uint64  `json:"heap_bytes"`
	RingOverwritten uint64  `json:"ring_overwritten"`
	SinkDropped     uint64  `json:"sink_dropped"`
	JobsDone        int     `json:"jobs_done"`
	JobsTotal       int     `json:"jobs_total"`
	// Engine/Transport are the optional lme/telemetry/v1 sections; their
	// internal layout is pinned by internal/telemetry's own schema tests,
	// so the envelope only asserts presence here.
	Engine    json.RawMessage `json:"engine"`
	Transport json.RawMessage `json:"transport"`
	Final     bool            `json:"final"`
}

// TestProgressSchemaRoundTrip strict-decodes a fully-populated record
// against the pinned mirror and round-trips it for value equality.
func TestProgressSchemaRoundTrip(t *testing.T) {
	clock := newFakeClock()
	r := New(Config{Interval: time.Second, Label: "smoke", Clock: clock.Now}, Sources{
		Now:       func() sim.Time { return 7_000_000 },
		Events:    func() uint64 { return 123_456 },
		OpenSpans: func() int { return 9 },
		Loss:      func() (uint64, uint64) { return 11, 2 },
		Jobs:      func() (int, int) { return 5, 40 },
	})
	clock.Advance(1500 * time.Millisecond)
	rec := r.Sample(clock.Now(), true)
	if rec.Schema != Schema {
		t.Fatalf("schema = %q", rec.Schema)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}

	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wire recordWire
	if err := dec.Decode(&wire); err != nil {
		t.Fatalf("schema drift: %v\nencoded: %s", err, data)
	}
	if wire.Schema != Schema || wire.SimUS != 7_000_000 || wire.Events != 123_456 ||
		wire.OpenSpans != 9 || wire.RingOverwritten != 11 || wire.SinkDropped != 2 ||
		wire.JobsDone != 5 || wire.JobsTotal != 40 || !wire.Final || wire.HeapBytes == 0 {
		t.Fatalf("mirror = %+v", wire)
	}

	var back Record
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Fatalf("round trip mutated the record:\n in  %+v\n out %+v", rec, back)
	}
}

// TestProgressTelemetrySections checks the reporter samples the optional
// engine/transport telemetry sources into the record, that the sections
// survive the wire strictly, and that records without them omit the keys
// entirely (old-reader compatibility).
func TestProgressTelemetrySections(t *testing.T) {
	clock := newFakeClock()
	eng := &telemetry.EngineStats{Schema: telemetry.Schema, Tiles: 4, Workers: 2, Windows: 17}
	ts := &telemetry.TransportStats{Schema: telemetry.Schema, Kind: "udp", Links: 6, ReorderOverflow: 2}
	r := New(Config{Interval: time.Second, Clock: clock.Now}, Sources{
		Events:    func() uint64 { return 10 },
		Engine:    func() *telemetry.EngineStats { return eng },
		Transport: func() *telemetry.TransportStats { return ts },
	})
	clock.Advance(time.Second)
	rec := r.Sample(clock.Now(), true)
	if rec.Engine == nil || rec.Engine.Tiles != 4 || rec.Engine.Windows != 17 {
		t.Fatalf("engine section not sampled: %+v", rec.Engine)
	}
	if rec.Transport == nil || rec.Transport.Kind != "udp" || rec.Transport.ReorderOverflow != 2 {
		t.Fatalf("transport section not sampled: %+v", rec.Transport)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wire recordWire
	if err := dec.Decode(&wire); err != nil {
		t.Fatalf("schema drift: %v\nencoded: %s", err, data)
	}
	if wire.Engine == nil || wire.Transport == nil {
		t.Fatalf("telemetry sections missing on the wire: %s", data)
	}

	// Without sources the keys must be absent, not null: old readers see
	// a byte-identical lme/progress/v1 record.
	r2 := New(Config{Interval: time.Second, Clock: clock.Now}, Sources{})
	plain, err := json.Marshal(r2.Sample(clock.Now(), true))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"engine"`, `"transport"`} {
		if bytes.Contains(plain, []byte(key)) {
			t.Errorf("record without telemetry carries %s: %s", key, plain)
		}
	}
}
